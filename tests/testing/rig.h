// Test helper: wires a workload Scenario into a PlannerContext.

#ifndef DSM_TESTS_TESTING_RIG_H_
#define DSM_TESTS_TESTING_RIG_H_

#include <memory>

#include "globalplan/global_plan.h"
#include "online/planner.h"
#include "plan/enumerator.h"
#include "workload/adversarial.h"

namespace dsm {
namespace testing_support {

struct Rig {
  std::unique_ptr<PlanEnumerator> enumerator;
  std::unique_ptr<GlobalPlan> global_plan;
  PlannerContext ctx;
};

inline Rig MakeRig(const Scenario& scenario,
                   EnumeratorOptions options = {}) {
  Rig rig;
  rig.enumerator = std::make_unique<PlanEnumerator>(
      scenario.catalog.get(), scenario.cluster.get(), scenario.graph.get(),
      scenario.model.get(), options);
  rig.global_plan =
      std::make_unique<GlobalPlan>(scenario.cluster.get(),
                                   scenario.model.get());
  rig.ctx.catalog = scenario.catalog.get();
  rig.ctx.cluster = scenario.cluster.get();
  rig.ctx.graph = scenario.graph.get();
  rig.ctx.model = scenario.model.get();
  rig.ctx.global_plan = rig.global_plan.get();
  rig.ctx.enumerator = rig.enumerator.get();
  return rig;
}

// Feeds the scenario's sharing sequence through `planner`; returns the
// resulting global plan cost. Rejected sharings are counted, not fatal.
inline double RunSequence(OnlinePlanner* planner, const Scenario& scenario,
                          int* rejected = nullptr) {
  int rejections = 0;
  for (const Sharing& sharing : scenario.sharings) {
    const auto choice = planner->ProcessSharing(sharing);
    if (!choice.ok()) ++rejections;
  }
  if (rejected != nullptr) *rejected = rejections;
  return planner->context().global_plan->TotalCost();
}

}  // namespace testing_support
}  // namespace dsm

#endif  // DSM_TESTS_TESTING_RIG_H_
