#include "sharing/sharing.h"

#include <gtest/gtest.h>

namespace dsm {
namespace {

Predicate P(TableId t, double v) {
  Predicate p;
  p.table = t;
  p.column = 0;
  p.op = CompareOp::kLt;
  p.value = v;
  return p;
}

TableSet TS(std::initializer_list<TableId> ids) {
  TableSet s;
  for (const TableId id : ids) s.Add(id);
  return s;
}

TEST(SharingTest, NumJoins) {
  EXPECT_EQ(Sharing(TS({0, 1, 2}), {}, 0).NumJoins(), 2);
  EXPECT_EQ(Sharing(TS({0, 1}), {}, 0).NumJoins(), 1);
  EXPECT_EQ(Sharing(TS({3}), {}, 0).NumJoins(), 0);
}

TEST(SharingTest, IdenticalIgnoresDestinationAndBuyer) {
  const Sharing a(TS({0, 1}), {P(0, 5)}, 0, "alice");
  const Sharing b(TS({0, 1}), {P(0, 5)}, 3, "bob");
  EXPECT_TRUE(a.IdenticalTo(b));
  EXPECT_EQ(a.QueryHash(), b.QueryHash());
}

TEST(SharingTest, DifferentPredicatesNotIdentical) {
  const Sharing a(TS({0, 1}), {P(0, 5)}, 0);
  const Sharing b(TS({0, 1}), {P(0, 6)}, 0);
  EXPECT_FALSE(a.IdenticalTo(b));
  EXPECT_NE(a.QueryHash(), b.QueryHash());
}

TEST(SharingTest, PredicateOrderIrrelevantToIdentity) {
  const Sharing a(TS({0, 1}), {P(0, 5), P(1, 7)}, 0);
  const Sharing b(TS({0, 1}), {P(1, 7), P(0, 5)}, 0);
  EXPECT_TRUE(a.IdenticalTo(b));
}

TEST(SharingTest, ContainmentViaPredicateSuperset) {
  // More predicates -> fewer tuples -> contained (Example 1.1's Seattle
  // filter is contained in the unfiltered sharing).
  const Sharing filtered(TS({0, 1}), {P(0, 5)}, 0);
  const Sharing full(TS({0, 1}), {}, 0);
  EXPECT_TRUE(filtered.ContainedIn(full));
  EXPECT_FALSE(full.ContainedIn(filtered));
}

TEST(SharingTest, ContainmentRequiresSameTables) {
  const Sharing a(TS({0, 1}), {P(0, 5)}, 0);
  const Sharing b(TS({0, 2}), {}, 0);
  EXPECT_FALSE(a.ContainedIn(b));
}

TEST(SharingTest, SelfContainment) {
  const Sharing a(TS({0, 1}), {P(0, 5)}, 0);
  EXPECT_TRUE(a.ContainedIn(a));
}

TEST(SharingTest, ProjectionAffectsIdentity) {
  Sharing a(TS({0, 1}), {}, 0);
  Sharing b(TS({0, 1}), {}, 0);
  b.set_projection({ProjectionColumn{0, 1}});
  EXPECT_FALSE(a.IdenticalTo(b));
  EXPECT_NE(a.QueryHash(), b.QueryHash());
}

TEST(SharingTest, ProjectionNormalized) {
  Sharing a(TS({0, 1}), {}, 0);
  a.set_projection({ProjectionColumn{1, 0}, ProjectionColumn{0, 1},
                    ProjectionColumn{1, 0}});
  ASSERT_EQ(a.projection().size(), 2u);
  EXPECT_EQ(a.projection()[0].table, 0u);
  EXPECT_EQ(a.projection()[1].table, 1u);
}

TEST(SharingTest, ResultKeyCarriesPredicates) {
  const Sharing a(TS({0, 1}), {P(0, 5)}, 2);
  const ViewKey key = a.ResultKey();
  EXPECT_EQ(key.tables, TS({0, 1}));
  ASSERT_EQ(key.predicates.size(), 1u);
}

}  // namespace
}  // namespace dsm
